file(REMOVE_RECURSE
  "CMakeFiles/pascal_to_pcode.dir/pascal_to_pcode.cpp.o"
  "CMakeFiles/pascal_to_pcode.dir/pascal_to_pcode.cpp.o.d"
  "pascal_to_pcode"
  "pascal_to_pcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pascal_to_pcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
