# Empty dependencies file for olga_compiler.
# This may be replaced when dependencies are built.
