file(REMOVE_RECURSE
  "CMakeFiles/olga_compiler.dir/olga_compiler.cpp.o"
  "CMakeFiles/olga_compiler.dir/olga_compiler.cpp.o.d"
  "olga_compiler"
  "olga_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olga_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
