file(REMOVE_RECURSE
  "../bench/table4_sources"
  "../bench/table4_sources.pdb"
  "CMakeFiles/table4_sources.dir/table4_sources.cpp.o"
  "CMakeFiles/table4_sources.dir/table4_sources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
