# Empty compiler generated dependencies file for table4_sources.
# This may be replaced when dependencies are built.
