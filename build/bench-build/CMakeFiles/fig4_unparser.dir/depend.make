# Empty dependencies file for fig4_unparser.
# This may be replaced when dependencies are built.
