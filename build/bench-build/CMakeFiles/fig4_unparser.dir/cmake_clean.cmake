file(REMOVE_RECURSE
  "../bench/fig4_unparser"
  "../bench/fig4_unparser.pdb"
  "CMakeFiles/fig4_unparser.dir/fig4_unparser.cpp.o"
  "CMakeFiles/fig4_unparser.dir/fig4_unparser.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
