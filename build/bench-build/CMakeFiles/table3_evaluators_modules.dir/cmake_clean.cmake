file(REMOVE_RECURSE
  "../bench/table3_evaluators_modules"
  "../bench/table3_evaluators_modules.pdb"
  "CMakeFiles/table3_evaluators_modules.dir/table3_evaluators_modules.cpp.o"
  "CMakeFiles/table3_evaluators_modules.dir/table3_evaluators_modules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_evaluators_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
