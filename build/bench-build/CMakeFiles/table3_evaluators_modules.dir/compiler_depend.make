# Empty compiler generated dependencies file for table3_evaluators_modules.
# This may be replaced when dependencies are built.
