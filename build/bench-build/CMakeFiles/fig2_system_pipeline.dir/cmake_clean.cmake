file(REMOVE_RECURSE
  "../bench/fig2_system_pipeline"
  "../bench/fig2_system_pipeline.pdb"
  "CMakeFiles/fig2_system_pipeline.dir/fig2_system_pipeline.cpp.o"
  "CMakeFiles/fig2_system_pipeline.dir/fig2_system_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_system_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
