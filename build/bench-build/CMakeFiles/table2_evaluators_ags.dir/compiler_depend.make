# Empty compiler generated dependencies file for table2_evaluators_ags.
# This may be replaced when dependencies are built.
