file(REMOVE_RECURSE
  "../bench/table2_evaluators_ags"
  "../bench/table2_evaluators_ags.pdb"
  "CMakeFiles/table2_evaluators_ags.dir/table2_evaluators_ags.cpp.o"
  "CMakeFiles/table2_evaluators_ags.dir/table2_evaluators_ags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_evaluators_ags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
