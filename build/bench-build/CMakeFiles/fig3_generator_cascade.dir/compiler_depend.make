# Empty compiler generated dependencies file for fig3_generator_cascade.
# This may be replaced when dependencies are built.
