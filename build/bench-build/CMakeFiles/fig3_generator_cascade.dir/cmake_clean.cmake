file(REMOVE_RECURSE
  "../bench/fig3_generator_cascade"
  "../bench/fig3_generator_cascade.pdb"
  "CMakeFiles/fig3_generator_cascade.dir/fig3_generator_cascade.cpp.o"
  "CMakeFiles/fig3_generator_cascade.dir/fig3_generator_cascade.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_generator_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
