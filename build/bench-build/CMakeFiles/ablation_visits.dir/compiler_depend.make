# Empty compiler generated dependencies file for ablation_visits.
# This may be replaced when dependencies are built.
