file(REMOVE_RECURSE
  "../bench/ablation_visits"
  "../bench/ablation_visits.pdb"
  "CMakeFiles/ablation_visits.dir/ablation_visits.cpp.o"
  "CMakeFiles/ablation_visits.dir/ablation_visits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
