file(REMOVE_RECURSE
  "../bench/ablation_dynamic"
  "../bench/ablation_dynamic.pdb"
  "CMakeFiles/ablation_dynamic.dir/ablation_dynamic.cpp.o"
  "CMakeFiles/ablation_dynamic.dir/ablation_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
