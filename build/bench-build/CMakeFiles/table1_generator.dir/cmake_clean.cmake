file(REMOVE_RECURSE
  "../bench/table1_generator"
  "../bench/table1_generator.pdb"
  "CMakeFiles/table1_generator.dir/table1_generator.cpp.o"
  "CMakeFiles/table1_generator.dir/table1_generator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
