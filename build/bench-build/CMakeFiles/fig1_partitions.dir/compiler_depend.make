# Empty compiler generated dependencies file for fig1_partitions.
# This may be replaced when dependencies are built.
