file(REMOVE_RECURSE
  "../bench/fig1_partitions"
  "../bench/fig1_partitions.pdb"
  "CMakeFiles/fig1_partitions.dir/fig1_partitions.cpp.o"
  "CMakeFiles/fig1_partitions.dir/fig1_partitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
