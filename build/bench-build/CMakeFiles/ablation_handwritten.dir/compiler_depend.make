# Empty compiler generated dependencies file for ablation_handwritten.
# This may be replaced when dependencies are built.
