file(REMOVE_RECURSE
  "../bench/ablation_handwritten"
  "../bench/ablation_handwritten.pdb"
  "CMakeFiles/ablation_handwritten.dir/ablation_handwritten.cpp.o"
  "CMakeFiles/ablation_handwritten.dir/ablation_handwritten.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_handwritten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
