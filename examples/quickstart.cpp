//===- examples/quickstart.cpp - fnc2cpp in five minutes ------------------===//
//
// Builds Knuth's binary-numbers attribute grammar (the example from the
// paper that started the field [34]) through the public API, runs the full
// FNC-2 generator cascade on it, prints the resulting visit sequences, and
// evaluates a tree — including the fractional part whose scale depends on
// its own length, which forces two visits per list node.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "workloads/ClassicGrammars.h"

#include <cstdio>

using namespace fnc2;

int main() {
  // 1. Build (or load) an attribute grammar. Workloads ship a few classics;
  //    see workloads/ClassicGrammars.cpp for how to define your own with
  //    GrammarBuilder, or feed molga text through olga::compileMolga.
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.dump().c_str());
    return 1;
  }
  std::printf("grammar:\n%s\n", AG.dump().c_str());

  // 2. Run the evaluator generator: SNC -> DNC -> OAG tests, then visit
  //    sequences and the space optimization.
  DiagnosticEngine GenDiags;
  GeneratedEvaluator GE = generateEvaluator(AG, GenDiags);
  if (!GE.Success) {
    std::fprintf(stderr, "%s", GenDiags.dump().c_str());
    return 1;
  }
  std::printf("class: %s\n", GE.Classes.className().c_str());
  std::printf("visit sequences:\n%s\n", GE.Plan.dump().c_str());

  // 3. Build a tree — here 110.101 in binary — and evaluate it.
  DiagnosticEngine TreeDiags;
  Tree T = readTerm(AG,
                    "Fraction(Pair(Pair(Single(One),One),Zero),"
                    "Pair(Pair(Single(One),Zero),One))",
                    TreeDiags);
  if (TreeDiags.hasErrors()) {
    std::fprintf(stderr, "%s", TreeDiags.dump().c_str());
    return 1;
  }

  Evaluator E(GE.Plan);
  DiagnosticEngine EvalDiags;
  if (!E.evaluate(T, EvalDiags)) {
    std::fprintf(stderr, "%s", EvalDiags.dump().c_str());
    return 1;
  }

  // 4. Read the result: values are fixed-point in 1/1024 units.
  PhylumId Num = AG.findPhylum("Num");
  AttrId Val = AG.findAttr(Num, "val");
  int64_t Raw = T.root()->attrVal(AG.attr(Val).IndexInOwner).asInt();
  std::printf("110.101b = %ld/1024 = %.4f (expected 6.625)\n", (long)Raw,
              double(Raw) / 1024.0);
  std::printf("%llu rules evaluated in %llu visits\n",
              (unsigned long long)E.stats().RulesEvaluated,
              (unsigned long long)E.stats().VisitsPerformed);
  return 0;
}
