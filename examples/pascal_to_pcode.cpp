//===- examples/pascal_to_pcode.cpp - the Pascal-to-P-code compiler -------===//
//
// The paper's flagship external application: a compiler from a Pascal-like
// language to P-code, specified as an attribute grammar. Parses a source
// program (the file named on the command line, or a built-in demo),
// evaluates the AG, and prints the P-code and static-error count. Also
// demonstrates the space-optimized evaluator: the same run under the
// memory map, with the peak-cell statistics.
//
// Run:  ./pascal_to_pcode [program.pas]
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "storage/StorageEvaluator.h"
#include "workloads/MiniPascal.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace fnc2;

static const char *Demo = R"pas(
var n: int;
var sum: int;
var big: bool;
begin
  n := 10;
  sum := 0;
  while 0 < n do begin
    sum := sum + n * n;
    n := n - 1;
  end;
  big := 100 < sum;
  if big then begin
    write sum;
  end else begin
    write 0;
  end;
end
)pas";

int main(int argc, char **argv) {
  std::string Source = Demo;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  DiagnosticEngine GenDiags;
  GeneratedEvaluator GE = generateEvaluator(AG, GenDiags);
  if (!GE.Success) {
    std::fprintf(stderr, "%s", GenDiags.dump().c_str());
    return 1;
  }
  std::printf("mini-pascal AG: class %s, %u visit sequences, storage "
              "%u vars / %u stacks\n\n",
              GE.Classes.className().c_str(), GE.Plan.numSequences(),
              GE.Storage.NumVarGroups, GE.Storage.NumStackGroups);

  DiagnosticEngine ParseDiags;
  Tree T = workloads::parseMiniPascal(AG, Source, ParseDiags);
  if (ParseDiags.hasErrors() || !T.root()) {
    std::fprintf(stderr, "%s", ParseDiags.dump().c_str());
    return 1;
  }

  Evaluator E(GE.Plan);
  DiagnosticEngine EvalDiags;
  if (!E.evaluate(T, EvalDiags)) {
    std::fprintf(stderr, "%s", EvalDiags.dump().c_str());
    return 1;
  }
  workloads::PCodeResult R = workloads::pcodeFromTree(AG, T);
  std::printf("; %ld static error(s)\n", (long)R.Errors);
  for (const std::string &I : R.Code)
    std::printf("  %s\n", I.c_str());

  // The same program under the space-optimized evaluator.
  StorageEvaluator SE(GE.Plan, GE.Storage);
  DiagnosticEngine SD;
  if (SE.evaluate(T, SD)) {
    const StorageStats &S = SE.stats();
    std::printf("\nstorage-optimized run: %llu peak cells vs %llu "
                "tree-resident cells (%.1fx reduction), %llu copies "
                "eliminated\n",
                (unsigned long long)S.PeakLiveCells,
                (unsigned long long)S.TreeBaselineCells, S.reductionFactor(),
                (unsigned long long)S.CopiesSkipped);
  }
  return R.Errors == 0 ? 0 : 2;
}
