//===- examples/incremental_editor.cpp - incremental reevaluation ---------===//
//
// A language-based-editor scenario (the Synthesizer-Generator-style use the
// paper targets with its incremental evaluators, section 2.1.2): a document
// is evaluated once, then edited repeatedly; every update re-establishes
// consistency while touching only the affected attribute instances, with
// statistics after each edit.
//
// Beyond the default demo, the editor records, replays and persists whole
// sessions through the edit-log subsystem:
//
//   ./incremental_editor                          # fresh random session
//   ./incremental_editor --nodes 50000 --edits 20 --seed 9
//   ./incremental_editor --record session.log     # save the edit log
//   ./incremental_editor --replay session.log     # replay a recorded log
//   ./incremental_editor --save-session doc.sess  # persist tree+attribution
//   ./incremental_editor --resume-session doc.sess --edits 5
//   ./incremental_editor --resume-session doc.sess --replay session.log
//
// A resumed session is bit-identical to the live one it was saved from —
// including the incremental evaluator's revisit stamps — so replaying the
// remainder of a recorded log after a resume produces exactly the bytes
// the uninterrupted session would have. --replay skips the prefix the
// session has already applied, which is what makes that composition work.
//
//===----------------------------------------------------------------------===//

#include "incremental/Session.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/EditScriptGen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace fnc2;

namespace {

int64_t result(const AttributeGrammar &AG, const Tree &T) {
  PhylumId Prog = AG.findPhylum("Prog");
  AttrId R = AG.findAttr(Prog, "result");
  return T.root()->attrVal(AG.attr(R).IndexInOwner).asInt();
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return {std::istreambuf_iterator<char>(In), std::istreambuf_iterator<char>()};
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return Out.good();
}

void printEditLine(const AttributeGrammar &AG, const IncrementalSession &S,
                   size_t Index, const char *Verb) {
  const IncrementalStats &St = S.stats();
  std::printf("edit %3zu: %-8s -> value %-12ld (%llu rules recomputed, "
              "%llu unchanged cutoffs, %llu visits skipped)\n",
              Index, Verb, (long)result(AG, S.tree()),
              (unsigned long long)St.RulesReevaluated,
              (unsigned long long)St.ValuesUnchanged,
              (unsigned long long)St.VisitsSkipped);
}

const char *kindName(EditOp::Kind K) {
  switch (K) {
  case EditOp::Kind::SubtreeReplace:
    return "replace";
  case EditOp::Kind::LeafValueChange:
    return "lexeme";
  case EditOp::Kind::ProductionSwap:
    return "swap";
  }
  return "?";
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--nodes N] [--edits N] [--seed S]\n"
      "          [--record FILE] [--replay FILE]\n"
      "          [--save-session FILE] [--resume-session FILE]\n"
      "\n"
      "  --nodes N            size of the fresh document (default 20000)\n"
      "  --edits N            random edits to apply (default 6; ignored "
      "under --replay)\n"
      "  --seed S             seed for document and edit script (default "
      "2024)\n"
      "  --record FILE        write the session's edit log to FILE\n"
      "  --replay FILE        replay a recorded edit log instead of random "
      "edits\n"
      "                       (skips any prefix the session already "
      "applied)\n"
      "  --save-session FILE  persist tree + attribution + stamps + log to "
      "FILE\n"
      "  --resume-session FILE  restore a persisted session instead of\n"
      "                         generating a fresh document\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Nodes = 20000, Edits = 6;
  uint64_t Seed = 2024;
  std::string RecordPath, ReplayPath, SavePath, ResumePath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= argc)
        return false;
      Out = argv[++I];
      return true;
    };
    std::string V;
    if (Arg == "--nodes" && Next(V))
      Nodes = unsigned(std::strtoul(V.c_str(), nullptr, 10));
    else if (Arg == "--edits" && Next(V))
      Edits = unsigned(std::strtoul(V.c_str(), nullptr, 10));
    else if (Arg == "--seed" && Next(V))
      Seed = std::strtoull(V.c_str(), nullptr, 10);
    else if (Arg == "--record" && Next(V))
      RecordPath = V;
    else if (Arg == "--replay" && Next(V))
      ReplayPath = V;
    else if (Arg == "--save-session" && Next(V))
      SavePath = V;
    else if (Arg == "--resume-session" && Next(V))
      ResumePath = V;
    else
      return usage(argv[0]);
  }

  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  if (!GE.Success) {
    std::fprintf(stderr, "%s", GD.dump().c_str());
    return 1;
  }

  IncrementalSession S(AG, compileArtifact(GE));
  DiagnosticEngine D;
  if (!ResumePath.empty()) {
    std::vector<uint8_t> Bytes = readFile(ResumePath);
    std::string Reason;
    if (Bytes.empty() || !S.restore(Bytes, Reason)) {
      std::fprintf(stderr, "cannot resume %s: %s\n", ResumePath.c_str(),
                   Bytes.empty() ? "unreadable file" : Reason.c_str());
      return 1;
    }
    std::printf("resumed session: %u nodes, %zu edits already applied, "
                "value %ld\n\n",
                S.tree().size(), S.log().size(), (long)result(AG, S.tree()));
  } else {
    TreeGenerator Gen(AG, Seed);
    if (!S.start(Gen.generate(Nodes), D)) {
      std::fprintf(stderr, "%s", D.dump().c_str());
      return 1;
    }
    std::printf("document: %u nodes\ninitial value: %ld\n\n", S.tree().size(),
                (long)result(AG, S.tree()));
  }

  if (!ReplayPath.empty()) {
    // Replay a recorded log, skipping what this session already holds.
    EditLog Log;
    std::string Reason;
    std::vector<uint8_t> Bytes = readFile(ReplayPath);
    if (Bytes.empty() || !EditLog::decodeFile(Bytes, AG, Log, Reason)) {
      std::fprintf(stderr, "cannot replay %s: %s\n", ReplayPath.c_str(),
                   Bytes.empty() ? "unreadable file" : Reason.c_str());
      return 1;
    }
    if (Log.size() < S.log().size()) {
      std::fprintf(stderr,
                   "log %s holds %zu edits but the session already applied "
                   "%zu — wrong log for this session\n",
                   ReplayPath.c_str(), Log.size(), S.log().size());
      return 1;
    }
    for (size_t I = S.log().size(); I != Log.size(); ++I) {
      S.evaluator().resetStats();
      if (!S.apply(Log.op(I), D)) {
        std::fprintf(stderr, "replay edit %zu failed:\n%s", I,
                     D.dump().c_str());
        return 1;
      }
      printEditLine(AG, S, I, kindName(Log.op(I).K));
    }
  } else {
    // Fresh random edits (a structure editor's mix: subtree replacements,
    // leaf value changes, production swaps).
    EditScriptGen Gen(AG, {.Seed = Seed ^ 0xE017});
    for (unsigned E = 0; E != Edits; ++E) {
      EditOp Op = Gen.next(S.tree());
      EditOp::Kind K = Op.K;
      S.evaluator().resetStats();
      if (!S.apply(std::move(Op), D)) {
        std::fprintf(stderr, "edit %u failed:\n%s", E, D.dump().c_str());
        return 1;
      }
      printEditLine(AG, S, S.log().size() - 1, kindName(K));
    }
  }

  std::printf("\nFor comparison, a full reevaluation recomputes every rule "
              "instance of the %u-node tree on each edit.\n",
              S.tree().size());

  if (!RecordPath.empty()) {
    if (!writeFile(RecordPath, S.log().encodeFile(AG))) {
      std::fprintf(stderr, "cannot write %s\n", RecordPath.c_str());
      return 1;
    }
    std::printf("recorded %zu edits to %s\n", S.log().size(),
                RecordPath.c_str());
  }
  if (!SavePath.empty()) {
    std::vector<uint8_t> Bytes;
    std::string WhyNot;
    if (!S.encode(Bytes, WhyNot) || !writeFile(SavePath, Bytes)) {
      std::fprintf(stderr, "cannot save session to %s: %s\n", SavePath.c_str(),
                   WhyNot.c_str());
      return 1;
    }
    std::printf("saved session (%zu bytes) to %s — resume with "
                "--resume-session %s\n",
                Bytes.size(), SavePath.c_str(), SavePath.c_str());
  }
  return 0;
}
