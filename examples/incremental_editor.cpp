//===- examples/incremental_editor.cpp - incremental reevaluation ---------===//
//
// A language-based-editor scenario (the Synthesizer-Generator-style use the
// paper targets with its incremental evaluators, section 2.1.2): an
// expression is evaluated once, then edited repeatedly; every update
// re-establishes consistency while touching only the affected attribute
// instances, with statistics after each edit. A quadratic-size expression
// makes the savings visible.
//
// Run:  ./incremental_editor
//
//===----------------------------------------------------------------------===//

#include "fnc2/Generator.h"
#include "incremental/Incremental.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <cstdio>

using namespace fnc2;

static int64_t result(const AttributeGrammar &AG, const Tree &T) {
  PhylumId Prog = AG.findPhylum("Prog");
  AttrId R = AG.findAttr(Prog, "result");
  return T.root()->attrVal(AG.attr(R).IndexInOwner).asInt();
}

int main() {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  if (!GE.Success) {
    std::fprintf(stderr, "%s", GD.dump().c_str());
    return 1;
  }

  TreeGenerator Gen(AG, 2024);
  Tree T = Gen.generate(20000);
  std::printf("document: %u nodes\n", T.size());

  IncrementalEvaluator IE(GE.Plan);
  DiagnosticEngine D;
  if (!IE.initial(T, D)) {
    std::fprintf(stderr, "%s", D.dump().c_str());
    return 1;
  }
  std::printf("initial value: %ld\n\n", (long)result(AG, T));

  // A series of edits at various depths.
  ProdId Num = AG.findProd("Num");
  for (int Edit = 0; Edit != 6; ++Edit) {
    // Walk down a pseudo-random path to a node of phylum Exp.
    TreeNode *N = T.root()->child(0);
    for (int Hop = 0; Hop != 4 + Edit * 3 && N->arity() != 0; ++Hop)
      N = N->child((Edit + Hop) % N->arity());

    std::string Replaced = writeTerm(AG, N).substr(0, 40);
    IE.replaceSubtree(T, N, T.makeLeaf(Num, Value::ofInt(100 + Edit)));
    IE.resetStats();
    if (!IE.update(T, D)) {
      std::fprintf(stderr, "%s", D.dump().c_str());
      return 1;
    }
    const IncrementalStats &S = IE.stats();
    std::printf("edit %d: replace %-42s -> value %-12ld "
                "(%llu rules recomputed, %llu unchanged cutoffs, "
                "%llu visits skipped)\n",
                Edit, (Replaced + "...").c_str(), (long)result(AG, T),
                (unsigned long long)S.RulesReevaluated,
                (unsigned long long)S.ValuesUnchanged,
                (unsigned long long)S.VisitsSkipped);
  }

  std::printf("\nFor comparison, a full reevaluation recomputes every rule "
              "instance of the %u-node tree on each edit.\n",
              T.size());
  return 0;
}
