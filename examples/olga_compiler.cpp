//===- examples/olga_compiler.cpp - the fnc2 driver -----------------------===//
//
// The FNC-2 system as a command-line tool (figure 2, generation-time half):
// reads a molga compilation unit (file argument, or a built-in demo), runs
// the front-end (input + typing), the companion mkfnc2 dependency check,
// the evaluator generator per grammar, and the translator to C. Prints the
// Table 1-style statistics row for each grammar and writes the C output
// next to the input (or to stdout with -c).
//
// Run:  ./olga_compiler [spec.olga] [-c]
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "fnc2/Generator.h"
#include "olga/Driver.h"
#include "olga/Parser.h"
#include "tools/Companion.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace fnc2;

static const char *Demo = R"molga(
module StringUtil
  fun repeat(s: string, n: int): string =
    if n <= 0 then "" else s ^ repeat(s, n - 1)
end

grammar Pretty
  import StringUtil
  phylum Doc root
  phylum Item
  attr Doc syn text : string
  attr Item inh depth : int
  attr Item syn text : string

  operator Render(i: Item) -> Doc
  operator Section(title: Item, body: Item) -> Item
  operator Para() -> Item lexeme string

  rules for Render
    i.depth := 0
    Doc.text := i.text
  end
  rules for Section
    title.depth := Item.depth
    body.depth := Item.depth + 1
    Item.text := title.text ^ "\n" ^ body.text
  end
  rules for Para
    Item.text := repeat("  ", Item.depth) ^ lexeme
  end
end
)molga";

int main(int argc, char **argv) {
  std::string Source = Demo;
  std::string Path;
  std::string CacheDir;
  bool CToStdout = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "-c") == 0) {
      CToStdout = true;
      continue;
    }
    if (std::strcmp(argv[I], "--cache-dir") == 0) {
      if (I + 1 == argc) {
        std::fprintf(stderr, "--cache-dir requires a directory argument\n");
        return 1;
      }
      CacheDir = argv[++I];
      continue;
    }
    Path = argv[I];
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  // mkfnc2: module dependency graph and build order.
  DiagnosticEngine DepDiags;
  olga::CompilationUnit Unit = olga::parseUnit(Source, DepDiags);
  ModuleDepGraph Deps = buildModuleDepGraph(Unit, DepDiags);
  if (DepDiags.hasErrors()) {
    std::fprintf(stderr, "%s", DepDiags.dump().c_str());
    return 1;
  }
  std::printf("build order:");
  for (const std::string &U : Deps.BuildOrder)
    std::printf(" %s", U.c_str());
  std::printf("\n");

  // Front-end: input + typing.
  DiagnosticEngine Diags;
  olga::CompileResult R = olga::compileMolga(Source, Diags);
  if (!R.Success) {
    std::fprintf(stderr, "%s", Diags.dump().c_str());
    return 1;
  }
  std::printf("front-end: %u lines, input %.1f ms, typing %.1f ms, "
              "%u constant(s) folded, %u tail-recursive function(s)\n",
              R.Lines, R.Phases.InputSec * 1e3, R.Phases.TypingSec * 1e3,
              R.Optimizer.ConstantsFolded, R.Optimizer.TailRecursiveFuns);

  // Generator + translator per grammar.
  for (const olga::LoweredGrammar &LG : R.Grammars) {
    DiagnosticEngine GD;
    GeneratorOptions GOpts;
    GOpts.CacheDir = CacheDir;
    GeneratedEvaluator GE = generateEvaluator(LG.AG, GD, GOpts);
    if (!GE.Success) {
      std::fprintf(stderr, "%s", GD.dump().c_str());
      if (!GE.Trace.empty())
        std::fprintf(stderr, "%s", GE.Trace.c_str());
      return 1;
    }
    Table1Row Row = GE.statsRow(LG.AG);
    std::printf("grammar %s: %u phyla, %u operators, %u rules, class %s, "
                "%u sequences, %.1f%% vars / %.1f%% stacks / %.1f%% tree, "
                "generated in %.1f ms\n",
                LG.AG.Name.c_str(), Row.Phyla, Row.Operators, Row.SemRules,
                Row.ClassName.c_str(), GE.Plan.numSequences(), Row.PctVars,
                Row.PctStacks, Row.PctNonTemp, Row.TimeSec * 1e3);
    if (GE.FromCache)
      std::printf("  (loaded from artifact cache)\n");

    CEmitStats CS;
    DiagnosticEngine ED;
    std::string C = emitC(LG, GE, CS, ED);
    if (CToStdout) {
      std::printf("%s", C.c_str());
    } else {
      std::string OutPath =
          (Path.empty() ? LG.AG.Name : Path) + ".generated.c";
      std::ofstream(OutPath) << C;
      std::printf("  translator: %u lines of C -> %s\n", CS.Lines,
                  OutPath.c_str());
    }
  }
  return 0;
}
