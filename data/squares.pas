var n: int;
var sum: int;
var big: bool;
begin
  n := 10;
  sum := 0;
  while 0 < n do begin
    sum := sum + n * n;
    n := n - 1;
  end;
  big := 100 < sum;
  if big then begin
    write sum;
  end else begin
    write 0;
  end;
end
